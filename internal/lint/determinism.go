package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism returns the analyzer enforcing serial-vs-parallel byte
// equality. It flags:
//
//   - calls to time.Now / time.Since (host wall-clock leaking into a
//     simulation measured in sim.Time picoseconds);
//   - top-level math/rand functions (global generator state is shared
//     across parallel experiment workers; methods on an explicitly
//     seeded *rand.Rand are fine);
//   - range loops over maps whose body emits output, schedules events,
//     or appends to a slice declared outside the loop — unless the
//     enclosing function sorts after the loop (the canonical
//     collect-then-sort idiom, e.g. sortutil.Keys);
//   - goroutine launches outside the packages in allowGoroutines
//     (module-relative directories; worker fan-out belongs to the
//     experiment runner and the sim phase-worker pool, nowhere else);
//   - sim.Engine scheduling calls (Schedule/After) lexically inside a
//     launched goroutine: an engine is partition-private, so
//     cross-partition event scheduling must go through the two-phase
//     staging API (Partition.Stage), which commits sends in a fixed
//     (time, source, order) merge — a direct call from a goroutine
//     races the heap and breaks byte-identity even in allowlisted
//     packages;
//   - any math/rand use at all inside a fault-injection package
//     (internal/fault): fault schedules must replay bit-identically
//     across reruns and parallel workers, so their randomness must flow
//     from seeded sim.RNG streams (sim.NewRNG / RNG.Split) — even an
//     explicitly seeded *rand.Rand is rejected there.
func Determinism(allowGoroutines ...string) Analyzer {
	allowed := make(map[string]bool, len(allowGoroutines))
	for _, dir := range allowGoroutines {
		allowed[dir] = true
	}
	return Analyzer{
		Name: "determinism",
		Run: func(m *Module, p *Package) []Diagnostic {
			d := &detPass{
				m: m, p: p,
				goroutineOK: allowed[m.relPkg(p)],
				simRNGOnly:  faultPkg(m.relPkg(p)),
			}
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.SelectorExpr:
						d.checkBannedFunc(n)
					case *ast.GoStmt:
						if !d.goroutineOK {
							d.out = append(d.out, m.diag("determinism", n.Pos(),
								"goroutine launched outside the fan-out allowlist: workers belong to the experiment runner (internal/runner) or the sim phase-worker pool (internal/sim)"))
						}
						d.checkGoroutineScheduling(n)
					case *ast.FuncDecl:
						if n.Body != nil {
							d.checkMapRanges(n)
						}
					}
					return true
				})
			}
			return d.out
		},
	}
}

type detPass struct {
	m           *Module
	p           *Package
	goroutineOK bool
	// simRNGOnly marks fault-injection packages, where every math/rand
	// use is banned (fault randomness must flow from seeded sim.RNG).
	simRNGOnly bool
	out        []Diagnostic
}

// faultPkg reports whether a module-relative package directory is a
// fault-injection package, held to the stricter sim.RNG-only rule.
func faultPkg(rel string) bool {
	return rel == "internal/fault" || rel == "fault" || strings.HasSuffix(rel, "/fault")
}

// checkBannedFunc flags uses of wall-clock and global-rand functions.
func (d *detPass) checkBannedFunc(sel *ast.SelectorExpr) {
	fn, ok := d.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			d.out = append(d.out, d.m.diag("determinism", sel.Pos(),
				"time.%s reads the host clock; simulations must use sim.Time only", fn.Name()))
		}
	case "math/rand", "math/rand/v2":
		if d.simRNGOnly {
			// Fault-injection packages: every math/rand use — even an
			// explicitly seeded *rand.Rand — is out; fault schedules must
			// come from seeded sim.RNG streams so split-off component
			// streams stay independent and reruns replay bit-identically.
			d.out = append(d.out, d.m.diag("determinism", sel.Pos(),
				"%s.%s in a fault-injection package: fault randomness must flow from a seeded sim.RNG stream (sim.NewRNG / RNG.Split)", fn.Pkg().Name(), fn.Name()))
			return
		}
		// Constructors (rand.New, rand.NewSource) build the explicitly
		// seeded generators we want; only the top-level functions that
		// share the global generator are nondeterministic.
		if strings.HasPrefix(fn.Name(), "New") {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			d.out = append(d.out, d.m.diag("determinism", sel.Pos(),
				"top-level %s.%s uses the shared global generator; use an explicitly seeded *rand.Rand", fn.Pkg().Name(), fn.Name()))
		}
	}
}

// checkGoroutineScheduling flags Schedule/After calls lexically inside a
// launched goroutine — the direct call (go eng.Schedule(...)) and any
// call within the goroutine's function literal. Event queues are
// partition-private; the only legal cross-goroutine path into one is the
// staging API, whose commit phase merges sends deterministically. This
// rule holds even in packages allowed to launch goroutines: the phase
// workers themselves must stage, not schedule.
func (d *detPass) checkGoroutineScheduling(g *ast.GoStmt) {
	flag := func(call *ast.CallExpr) {
		if name := calleeName(call); scheduleNames[name] {
			d.out = append(d.out, d.m.diag("determinism", call.Pos(),
				"%s called from a goroutine: cross-partition event scheduling must go through the staging API (Partition.Stage) and commit between phases", name))
		}
	}
	flag(g.Call)
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call != g.Call {
			flag(call)
		}
		return true
	})
}

// checkMapRanges inspects every range-over-map loop in fd for
// order-sensitive effects.
func (d *detPass) checkMapRanges(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := d.p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		d.checkMapRangeBody(fd, rng)
		return true
	})
}

// Output-emitting call names: fmt's print family plus the Write*
// methods of writers and builders.
var outputNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Errorf": true,
	"Write":  true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// Event-scheduling call names (the sim.Engine API).
var scheduleNames = map[string]bool{"Schedule": true, "After": true}

func (d *detPass) checkMapRangeBody(fd *ast.FuncDecl, rng *ast.RangeStmt) {
	var appendDiags []Diagnostic
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeName(n)
			switch {
			case outputNames[name]:
				d.out = append(d.out, d.m.diag("determinism", n.Pos(),
					"%s inside a map range loop emits output in nondeterministic order; iterate sorted keys (sortutil.Keys)", name))
			case scheduleNames[name]:
				d.out = append(d.out, d.m.diag("determinism", n.Pos(),
					"%s inside a map range loop schedules events in nondeterministic order; iterate sorted keys (sortutil.Keys)", name))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || calleeName(call) != "append" || !d.isBuiltin(call) {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				if base := baseIdent(n.Lhs[i]); base != nil && d.declaredOutside(base, rng) {
					appendDiags = append(appendDiags, d.m.diag("determinism", n.Pos(),
						"append to %s (declared outside the loop) while ranging over a map builds a nondeterministically ordered slice; iterate sorted keys or sort the result", base.Name))
				} else if base == nil {
					appendDiags = append(appendDiags, d.m.diag("determinism", n.Pos(),
						"append to a non-local target while ranging over a map builds a nondeterministically ordered slice; iterate sorted keys or sort the result"))
				}
			}
		}
		return true
	})
	if len(appendDiags) > 0 && !sortCallAfter(fd, rng.End()) {
		d.out = append(d.out, appendDiags...)
	}
}

// isBuiltin reports whether a call's callee resolves to a Go builtin.
func (d *detPass) isBuiltin(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = d.p.Info.Uses[id].(*types.Builtin)
	return ok
}

// baseIdent resolves an assignment target to its base identifier:
// x, x[i], x.f[k] all resolve to x. A nil result means the base is not
// a plain identifier (e.g. a field of a dereferenced pointer), which
// is conservatively treated as declared outside the loop.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's declaration lies outside the
// range statement (the loop variables and body-locals lie inside).
func (d *detPass) declaredOutside(id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := d.p.Info.ObjectOf(id)
	if obj == nil {
		return true // unresolved: be conservative
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortCallAfter reports whether fd's body contains a sorting call after
// pos — the collect-then-sort idiom that restores a deterministic order
// to a slice filled from a map. A call sorts when its bare name
// mentions Sort (slices.Sort, sort.Slice, ...) or it is any function of
// package sort (sort.Strings, sort.Ints, ...).
func sortCallAfter(fd *ast.FuncDecl, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		if strings.Contains(calleeName(call), "Sort") {
			found = true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok && x.Name == "sort" {
				found = true
			}
		}
		return true
	})
	return found
}
