package lint

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// A multi-file ProtoConfig checks every listed file, but only the
// primary (first) file must itself contain the dispatch switches:
// satellite files are coverage-checked on the switches they do have.
func TestProtoConfigMultiFile(t *testing.T) {
	mod, err := LoadModule(filepath.Join("testdata", "src", "fixmod"))
	if err != nil {
		t.Fatal(err)
	}
	base := ProtoConfig{
		StatePkg: "proto", StateName: "State",
		MsgPkg: "proto", MsgName: "Kind",
	}

	// Table file primary, switch-free file as satellite: the satellite
	// must not be required to re-dispatch.
	cfg := base
	cfg.Files = []string{"proto/table.go", "nilg/nilg.go"}
	noSwitch := 0
	for _, d := range Run(mod, []Analyzer{ProtocolTable(cfg)}) {
		if strings.Contains(d.Message, "contains no switch") {
			noSwitch++
		}
	}
	if noSwitch != 0 {
		t.Errorf("satellite file without switches produced %d no-switch findings, want 0", noSwitch)
	}

	// Swapped order: the switch-free file is now primary and must be
	// flagged for both enums.
	cfg.Files = []string{"nilg/nilg.go", "proto/table.go"}
	noSwitch = 0
	for _, d := range Run(mod, []Analyzer{ProtocolTable(cfg)}) {
		if d.File == "nilg/nilg.go" && strings.Contains(d.Message, "contains no switch") {
			noSwitch++
		}
	}
	if noSwitch != 2 {
		t.Errorf("switch-free primary file produced %d no-switch findings, want 2 (state and message)", noSwitch)
	}

	// The legacy single-File form still works unchanged.
	legacy := base
	legacy.File = "proto/table.go"
	single := Run(mod, []Analyzer{ProtocolTable(legacy)})
	multi := Run(mod, []Analyzer{ProtocolTable(ProtoConfig{
		Files:    []string{"proto/table.go"},
		StatePkg: base.StatePkg, StateName: base.StateName,
		MsgPkg: base.MsgPkg, MsgName: base.MsgName,
	})})
	if len(single) != len(multi) {
		t.Errorf("File and Files forms disagree: %d vs %d findings", len(single), len(multi))
	}
}

// WriteJSON is the shared wire shape of piranha-vet -json and
// piranha-mc -json: deterministic, and an empty run is [] — never null.
func TestWriteJSON(t *testing.T) {
	var empty bytes.Buffer
	if err := WriteJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(empty.String()); got != "[]" {
		t.Errorf("empty diagnostics encode as %q, want []", got)
	}

	diags := []Diagnostic{
		{File: "a.go", Line: 3, Analyzer: "determinism", Message: "m1"},
		{File: "b.go", Line: 9, Analyzer: "mcheck/stale-fill", Message: "m2"},
	}
	var x, y bytes.Buffer
	if err := WriteJSON(&x, diags); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&y, diags); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Error("WriteJSON is nondeterministic")
	}
	for _, want := range []string{`"file": "a.go"`, `"line": 9`, `"analyzer": "mcheck/stale-fill"`, `"message": "m1"`} {
		if !strings.Contains(x.String(), want) {
			t.Errorf("encoded JSON missing %s:\n%s", want, x.String())
		}
	}
}
