package piranha

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"piranha/internal/core"
	"piranha/internal/trace"
)

// tracedExp builds a traced experiment (each call owns a fresh tracer so
// experiments can run concurrently).
func tracedExp(name string, sys SystemConfig) Experiment {
	return Experiment{
		Name:      name,
		Sys:       sys,
		Work:      core.WorkloadSpec{Kind: core.OLTP},
		WarmTx:    tiny.Warm,
		MeasureTx: tiny.Measure,
		Seed:      7,
		Trace:     trace.New(0),
	}
}

func chromeBytes(t *testing.T, tr *trace.Tracer, label string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 0, label); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	return buf.Bytes()
}

// TestTraceBatchMatchesSerial is the tracing half of the determinism
// contract: the trace a run records under RunBatch with a parallel
// worker pool is byte-for-byte the trace it records alone.
func TestTraceBatchMatchesSerial(t *testing.T) {
	configs := []SystemConfig{P1(), P4(), P8(), MultiChip(2, 4)}
	names := []string{"P1", "P4", "P8", "P4x2"}

	serial := make([][]byte, len(configs))
	for i, sys := range configs {
		e := tracedExp(names[i], sys)
		RunExperiment(e)
		serial[i] = chromeBytes(t, e.Trace, names[i])
	}

	exps := make([]Experiment, len(configs))
	for i, sys := range configs {
		exps[i] = tracedExp(names[i], sys)
	}
	SetParallelism(4)
	RunBatch(exps)
	SetParallelism(0)
	for i := range exps {
		got := chromeBytes(t, exps[i].Trace, names[i])
		if !bytes.Equal(got, serial[i]) {
			t.Fatalf("%s: parallel trace differs from serial (%d vs %d bytes)",
				names[i], len(got), len(serial[i]))
		}
	}
}

// TestTraceCoversAllComponents checks the acceptance contract: a traced
// P8/OLTP run produces events from the cpu, l1, l2, pe, noc and memctl
// layers (plus the kernel).
func TestTraceCoversAllComponents(t *testing.T) {
	e := tracedExp("p8", P8())
	RunExperiment(e)
	events := e.Trace.Events(nil)
	if len(events) == 0 {
		t.Fatal("traced run recorded no events")
	}
	seen := map[trace.Component]bool{}
	for _, ev := range events {
		seen[ev.Comp] = true
	}
	for _, c := range []trace.Component{
		trace.CPU, trace.L1, trace.L2, trace.PE, trace.NOC, trace.Mem, trace.Kernel,
	} {
		if !seen[c] {
			t.Errorf("component %s missing from P8/OLTP trace", trace.Name(c, 0))
		}
	}

	out := chromeBytes(t, e.Trace, "p8")
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace has no events")
	}
}

// TestRunOptionsMatchExperiment checks the option API assembles exactly
// the experiment the escape hatch would run.
func TestRunOptionsMatchExperiment(t *testing.T) {
	got := Run(P4(), OLTP(),
		WithName("opt"),
		WithScale(tiny),
		WithSeed(99),
	)
	want := RunExperiment(Experiment{
		Name:      "opt",
		Sys:       P4(),
		Work:      core.WorkloadSpec{Kind: core.OLTP},
		WarmTx:    tiny.Warm,
		MeasureTx: tiny.Measure,
		Seed:      99,
	})
	if got != want {
		t.Fatalf("option API diverged from experiment:\n got %+v\nwant %+v", got, want)
	}
}

// TestWithTraceWritesChromeJSON exercises the WithTrace option end to
// end and its determinism across calls.
func TestWithTraceWritesChromeJSON(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		Run(P2(), OLTP(), WithScale(tiny), WithTrace(&buf), WithTraceCapacity(1024))
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("WithTrace output differs between identical runs")
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) == 0 {
		t.Fatalf("unexpected trace document: unit=%q events=%d",
			doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
}

// TestWithIntervalsProducesSeries checks the sampler option: bins cover
// the measured window and the miss counts stay within the access counts.
func TestWithIntervalsProducesSeries(t *testing.T) {
	r := Run(P4(), OLTP(), WithScale(tiny), WithIntervals(2*time.Microsecond))
	if r.Series == nil || r.Series.Len() == 0 {
		t.Fatalf("no series recorded: %+v", r.Series)
	}
	var accesses, misses uint64
	for _, b := range r.Series.Bins {
		if b.Busy < 0 || b.Stall < 0 {
			t.Fatalf("negative bin: %+v", b)
		}
		accesses += b.Accesses
		misses += b.Misses
	}
	if accesses == 0 || misses > accesses {
		t.Fatalf("implausible access counts: %d accesses, %d misses", accesses, misses)
	}
	if !strings.Contains(r.Series.String(), "busy") {
		t.Fatalf("series render:\n%s", r.Series)
	}
	// The untraced result must match field-for-field apart from Series.
	plain := Run(P4(), OLTP(), WithScale(tiny))
	withSeries := r
	withSeries.Series = nil
	if withSeries != plain {
		t.Fatalf("interval sampling changed the simulation:\n got %+v\nwant %+v", withSeries, plain)
	}
}

// TestResultJSONSchema pins the versioned wire format of Result.
func TestResultJSONSchema(t *testing.T) {
	r := Run(P1(), OLTP(), WithScale(tiny), WithIntervals(5*time.Microsecond))
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	if v, ok := m["schema_version"].(float64); !ok || int(v) != core.ResultSchemaVersion {
		t.Fatalf("schema_version = %v, want %d", m["schema_version"], core.ResultSchemaVersion)
	}
	for _, k := range []string{
		"name", "chips", "cpus", "tx", "elapsed_ps", "time_per_tx_ns",
		"breakdown", "l1_miss_breakdown", "page_hit_rate", "instructions",
		"idle_ps", "ctx_switches", "l2", "svc", "series",
	} {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON missing %q:\n%s", k, out)
		}
	}
	bd, ok := m["breakdown"].(map[string]any)
	if !ok {
		t.Fatalf("breakdown not an object: %v", m["breakdown"])
	}
	if _, ok := bd["busy_frac"]; !ok {
		t.Fatalf("breakdown missing busy_frac: %v", bd)
	}
	// Without intervals the series key disappears entirely.
	out2, err := json.Marshal(Run(P1(), OLTP(), WithScale(tiny)))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(out2, []byte(`"series"`)) {
		t.Fatalf("series key present on an interval-free run:\n%s", out2)
	}
}

// TestFigureReportSeriesRendering checks the harness-wide interval
// switch: reports grow sparkline blocks with it on, and render exactly
// as before with it off (the golden figures_output.txt contract).
func TestFigureReportSeriesRendering(t *testing.T) {
	SetParallelism(2)
	defer SetParallelism(0)
	plain := Fig6(tiny).String()
	if strings.Contains(plain, "series ") {
		t.Fatalf("series block rendered without SetIntervals:\n%s", plain)
	}
	SetIntervals(5 * time.Microsecond)
	defer SetIntervals(0)
	traced := Fig6(tiny).String()
	if !strings.Contains(traced, "series P8") || !strings.Contains(traced, "miss rate") {
		t.Fatalf("sparkline block missing with SetIntervals on:\n%s", traced)
	}
}

// TestHarnessTraceCapture drives the cmd/figures capture path: traces
// accumulate per run, in submission order, and merge into one document.
func TestHarnessTraceCapture(t *testing.T) {
	SetTraceCapture(2048)
	defer SetTraceCapture(-1)
	rep := fig5Single(core.OLTP, tiny)
	if len(rep.Results) != 4 {
		t.Fatalf("unexpected result count %d", len(rep.Results))
	}
	var buf bytes.Buffer
	if err := WriteCapturedTraces(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged capture not valid JSON: %v", err)
	}
	// One process per captured run, labeled in submission order.
	var procs []string
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "process_name" && ev["ph"] == "M" {
			args := ev["args"].(map[string]any)
			procs = append(procs, args["name"].(string))
		}
	}
	want := []string{"P1", "INO", "OOO", "P8"}
	if len(procs) != len(want) {
		t.Fatalf("process metadata %v, want %v", procs, want)
	}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("process order %v, want %v", procs, want)
		}
	}
}
