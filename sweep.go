package piranha

import (
	"fmt"
	"strings"
	"time"

	"piranha/internal/core"
	"piranha/internal/sim"
	"piranha/internal/stats"
)

// LoadSweep configures RunLoadSweep: an open-loop sweep over offered
// load producing the throughput-vs-tail-latency hockey stick.
type LoadSweep struct {
	// Multipliers are the offered-load points as fractions of the
	// machine's calibrated closed-loop capacity. Empty selects
	// DefaultSweepMultipliers.
	Multipliers []float64
	// Arrivals is the template every point's stream copies — process
	// shape, burstiness, queue capacity, tenant mix. Rate is overridden
	// per point; the zero value means Poisson with an unbounded queue.
	Arrivals Arrivals
	// Scale, Seed, Intervals and IntraWorkers mirror the Run options
	// and apply to the calibration run and every sweep point alike.
	Scale        Scale
	Seed         uint64
	Intervals    time.Duration
	IntraWorkers int
}

// DefaultSweepMultipliers brackets the knee: well below capacity, the
// approach, and two points past it.
var DefaultSweepMultipliers = []float64{0.3, 0.5, 0.7, 0.85, 0.95, 1.05, 1.2}

// SweepPoint is one offered-load point of a load sweep.
type SweepPoint struct {
	Multiplier  float64 `json:"multiplier"`
	OfferedTxS  float64 `json:"offered_tx_s"`
	AchievedTxS float64 `json:"achieved_tx_s"`
	P50Ns       float64 `json:"p50_ns"`
	P90Ns       float64 `json:"p90_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`
	MeanDepth   float64 `json:"mean_depth"`
	Shed        uint64  `json:"shed"`
	Result      Result  `json:"result"`
}

// SweepResult is a full load sweep: the calibrated capacity, the curve,
// and the detected saturation point.
type SweepResult struct {
	Name        string       `json:"name"`
	CapacityTxS float64      `json:"capacity_tx_s"`
	Points      []SweepPoint `json:"points"`
	// Saturation indexes the first saturated point (achieved throughput
	// falling measurably short of offered, or tail latency exploding
	// relative to the lightest point); -1 when the sweep never saturates.
	Saturation int `json:"saturation"`
}

// RunLoadSweep drives one machine/workload pair through an open-loop
// load sweep. It first calibrates the machine's closed-loop capacity
// (transactions per second with every CPU saturated), then offers
// arrival streams at cfg.Multipliers fractions of that capacity and
// records throughput and the p50/p90/p99/p999 arrival→completion
// latencies per point. Sweep points run concurrently (SetParallelism)
// yet the result is deterministic: the same seed and config reproduce
// identical curves, byte for byte, at any -jintra or worker count.
func RunLoadSweep(sys SystemConfig, w Workload, cfg LoadSweep) SweepResult {
	if cfg.Scale == (Scale{}) {
		cfg.Scale = QuickScale
	}
	mults := cfg.Multipliers
	if len(mults) == 0 {
		mults = DefaultSweepMultipliers
	}
	name := string(w.Kind)
	if name == "" {
		name = string(core.OLTP)
	}
	intervals := sim.Time(cfg.Intervals.Nanoseconds()) * sim.Nanosecond

	// Closed-loop calibration: with one always-ready server process per
	// CPU, throughput is the machine's capacity. Routed through RunBatch
	// so harness-wide defaults (SetIntraParallel, SetSeed) apply.
	cal := RunBatch([]Experiment{{
		Name:         name + "/calibrate",
		Sys:          sys,
		Work:         w,
		WarmTx:       cfg.Scale.Warm,
		MeasureTx:    cfg.Scale.Measure,
		Seed:         cfg.Seed,
		IntraWorkers: cfg.IntraWorkers,
	}})[0]
	capacity := 1e9 / cal.TimePerTx // ns/tx → tx/s

	exps := make([]Experiment, len(mults))
	for i, m := range mults {
		wk := w
		wk.Arrivals = cfg.Arrivals
		wk.Arrivals.Rate = m * capacity
		exps[i] = core.Experiment{
			Name:         fmt.Sprintf("%s@%gx", name, m),
			Sys:          sys,
			Work:         wk,
			WarmTx:       cfg.Scale.Warm,
			MeasureTx:    cfg.Scale.Measure,
			Seed:         cfg.Seed,
			Intervals:    intervals,
			IntraWorkers: cfg.IntraWorkers,
		}
	}
	results := RunBatch(exps)

	pts := make([]SweepPoint, len(results))
	for i, r := range results {
		p := SweepPoint{
			Multiplier: mults[i],
			OfferedTxS: exps[i].Work.Arrivals.Rate,
			Result:     r,
		}
		if r.TimePerTx > 0 {
			p.AchievedTxS = 1e9 / r.TimePerTx
		}
		if r.Lat != nil {
			ns := float64(sim.Nanosecond)
			p.P50Ns = float64(r.Lat.Quantile(0.50)) / ns
			p.P90Ns = float64(r.Lat.Quantile(0.90)) / ns
			p.P99Ns = float64(r.Lat.Quantile(0.99)) / ns
			p.P999Ns = float64(r.Lat.Quantile(0.999)) / ns
		}
		if r.Admission != nil {
			p.Shed = r.Admission.Shed
			if r.Elapsed > 0 {
				p.MeanDepth = float64(r.Admission.DepthIntegral) / float64(r.Elapsed)
			}
		}
		pts[i] = p
	}
	return SweepResult{
		Name:        name,
		CapacityTxS: capacity,
		Points:      pts,
		Saturation:  detectSaturation(pts),
	}
}

// detectSaturation finds the knee of the hockey stick: the first point
// whose achieved throughput falls short of offered by more than 5%, or
// (for sweeps queue-bound enough to keep up on throughput) the first
// whose p99 exceeds 5x the lightest point's.
func detectSaturation(pts []SweepPoint) int {
	for i, p := range pts {
		if p.AchievedTxS < 0.95*p.OfferedTxS {
			return i
		}
	}
	if len(pts) > 1 && pts[0].P99Ns > 0 {
		for i, p := range pts {
			if p.P99Ns > 5*pts[0].P99Ns {
				return i
			}
		}
	}
	return -1
}

// String renders the sweep as a table plus a p99 sparkline.
func (s SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load sweep %s: closed-loop capacity %.0f tx/s\n", s.Name, s.CapacityTxS)
	fmt.Fprintf(&b, "  %-6s %-12s %-12s %-10s %-10s %-10s %-9s %s\n",
		"mult", "offered/s", "achieved/s", "p50(ns)", "p99(ns)", "p999(ns)", "depth", "shed")
	p99s := make([]float64, len(s.Points))
	for i, p := range s.Points {
		mark := " "
		if i == s.Saturation {
			mark = "*"
		}
		fmt.Fprintf(&b, " %s%-6g %-12.0f %-12.0f %-10.0f %-10.0f %-10.0f %-9.2f %d\n",
			mark, p.Multiplier, p.OfferedTxS, p.AchievedTxS,
			p.P50Ns, p.P99Ns, p.P999Ns, p.MeanDepth, p.Shed)
		p99s[i] = p.P99Ns
	}
	fmt.Fprintf(&b, "  p99 vs load |%s|", stats.Sparkline(p99s))
	if s.Saturation >= 0 {
		fmt.Fprintf(&b, "  saturates at %gx", s.Points[s.Saturation].Multiplier)
	} else {
		fmt.Fprintf(&b, "  no saturation in sweep")
	}
	return b.String()
}
