package piranha

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"piranha/internal/area"
	"piranha/internal/cache"
	"piranha/internal/core"
	"piranha/internal/directory"
	"piranha/internal/ecc"
	"piranha/internal/link"
	"piranha/internal/memctl"
	"piranha/internal/pe"
	"piranha/internal/runner"
	"piranha/internal/sim"
	"piranha/internal/sortutil"
	"piranha/internal/stats"
	"piranha/internal/trace"
	"piranha/internal/useq"
)

// FigureReport is one regenerated table or figure: rendered text, the raw
// results, and the headline metrics that EXPERIMENTS.md tracks against
// the paper.
type FigureReport struct {
	ID      string
	Title   string
	Text    string
	Results []Result
	// Metrics holds named scalar outcomes (speedups, fractions).
	Metrics map[string]float64
}

func (f FigureReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s ====\n%s", f.ID, f.Title, f.Text)
	if len(f.Metrics) > 0 {
		b.WriteString("metrics:\n")
		for _, k := range sortutil.Keys(f.Metrics) {
			fmt.Fprintf(&b, "  %-32s %8.3f\n", k, f.Metrics[k])
		}
	}
	// Interval series appear only when the harness ran with SetIntervals,
	// so the default rendering stays byte-identical to figures_output.txt.
	for _, r := range f.Results {
		if r.Series.Len() > 0 {
			fmt.Fprintf(&b, "series %s: %s", r.Name, r.Series)
		}
	}
	return b.String()
}

// parallelism is how many experiments the figure harness runs
// concurrently; 0 (the default) means one worker per host CPU.
var parallelism int

// SetParallelism bounds the worker pool used by RunBatch and the figure
// harness: n <= 0 restores the default of GOMAXPROCS workers. Each
// experiment is an isolated deterministic simulation, so the worker
// count changes wall-clock time only, never a reported number.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism = n
}

// intraWorkers is the harness-wide default for intra-run parallelism
// (see WithIntraParallel); experiments that set their own IntraWorkers
// keep it.
var intraWorkers int

// SetIntraParallel makes every subsequent harness run execute on n phase
// workers via two-phase partitioned event execution (n <= 1 restores the
// serial engine). Output is byte-identical at any setting; this composes
// with SetParallelism, which fans whole experiments across the batch
// pool.
func SetIntraParallel(n int) {
	if n < 1 {
		n = 1
	}
	harnessMu.Lock()
	intraWorkers = n
	harnessMu.Unlock()
}

// Harness-wide tracing and interval settings. The figure functions
// build their own experiment lists; these settings let cmd/figures turn
// on interval sampling or trace capture for every run in a sweep
// without threading options through each harness.
var (
	harnessMu       sync.Mutex
	harnessInterval sim.Time
	harnessSeed     uint64
	captureTraces   bool
	captureCap      int
	captured        []*trace.Tracer
	capturedLabels  []string
)

// SetSeed makes every subsequent harness run that does not pin its own
// seed use this workload seed (0 restores the library default). Changing
// the seed perturbs every simulated number, so the golden figure outputs
// only hold at the default.
func SetSeed(seed uint64) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	harnessSeed = seed
}

// SetIntervals makes every subsequent harness run sample interval
// metrics with the given bin width (0 disables). Reports then append
// per-run ASCII sparklines after their metrics block.
func SetIntervals(d time.Duration) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	harnessInterval = sim.Time(d.Nanoseconds()) * sim.Nanosecond
}

// SetTraceCapture makes every subsequent harness run record a trace
// with the given ring capacity (0 selects the default), accumulating
// them for WriteCapturedTraces. Passing a negative capacity disables
// capture and discards anything accumulated.
func SetTraceCapture(capacity int) {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	captureTraces = capacity >= 0
	captureCap = capacity
	captured, capturedLabels = nil, nil
}

// WriteCapturedTraces merges every trace captured since SetTraceCapture
// into one Chrome trace-event JSON document, one process per run, in
// the order the harness submitted the runs (deterministic under any
// parallelism setting).
func WriteCapturedTraces(w io.Writer) error {
	harnessMu.Lock()
	defer harnessMu.Unlock()
	return trace.WriteChromeMulti(w, captured, capturedLabels, 0)
}

// runBatch fans a config sweep across host CPUs and returns results in
// input order. A panic captured inside one run (always a model bug, e.g.
// an invariant violation) is re-raised here after the rest of the batch
// has completed, preserving the serial harness's fail-fast behaviour
// without losing sibling runs mid-flight.
func runBatch(exps []core.Experiment) []Result {
	harnessMu.Lock()
	iv, capture, capN, jintra, seed := harnessInterval, captureTraces, captureCap, intraWorkers, harnessSeed
	harnessMu.Unlock()
	for i := range exps {
		if iv > 0 && exps[i].Intervals == 0 {
			exps[i].Intervals = iv
		}
		if capture && exps[i].Trace == nil {
			exps[i].Trace = trace.New(capN)
		}
		if exps[i].IntraWorkers == 0 {
			exps[i].IntraWorkers = jintra
		}
		if seed != 0 && exps[i].Seed == 0 {
			exps[i].Seed = seed
		}
	}
	rs, err := runner.Results(runner.Run(context.Background(), exps, parallelism))
	if err != nil {
		panic(err)
	}
	if capture {
		harnessMu.Lock()
		for i := range exps {
			captured = append(captured, exps[i].Trace)
			capturedLabels = append(capturedLabels, exps[i].Name)
		}
		harnessMu.Unlock()
	}
	return rs
}

// Table1 renders the parameter table for the studied configurations.
func Table1() FigureReport {
	t := stats.NewTable("Table 1: Parameters for different processor designs",
		"Parameter", "Piranha (P8)", "OOO", "Full-Custom (P8F)")
	p8, ooo, p8f := core.PiranhaChip(8), core.OOOChip(), core.FullCustomChip(8)
	row := func(name string, f func(core.ChipConfig) string) {
		t.AddRow(name, f(p8), f(ooo), f(p8f))
	}
	row("Processor speed", func(c core.ChipConfig) string { return fmt.Sprintf("%d MHz", c.Core.Clock.Freq()) })
	row("Issue width", func(c core.ChipConfig) string { return fmt.Sprintf("%d", c.Core.IssueWidth) })
	row("Instruction window", func(c core.ChipConfig) string {
		if c.Core.WindowSize <= 1 {
			return "-"
		}
		return fmt.Sprintf("%d", c.Core.WindowSize)
	})
	row("CPUs per chip", func(c core.ChipConfig) string { return fmt.Sprintf("%d", c.CPUs) })
	row("Cache line size", func(core.ChipConfig) string { return "64 bytes" })
	row("L1 cache size", func(c core.ChipConfig) string { return fmt.Sprintf("%d KB", c.L1.SizeBytes>>10) })
	row("L1 associativity", func(c core.ChipConfig) string { return fmt.Sprintf("%d-way", c.L1.Ways) })
	row("L2 cache size", func(c core.ChipConfig) string { return fmt.Sprintf("%.1f MB", float64(c.L2.SizeBytes)/(1<<20)) })
	row("L2 associativity", func(c core.ChipConfig) string { return fmt.Sprintf("%d-way", c.L2.Ways) })
	row("L2 hit / fwd latency", func(c core.ChipConfig) string {
		return fmt.Sprintf("%d / %d ns", c.L2.HitLatency/sim.Nanosecond, c.L2.FwdLatency/sim.Nanosecond)
	})
	row("Local memory latency", func(c core.ChipConfig) string {
		return fmt.Sprintf("~%d ns", (c.Mem.RandomLatency+c.L2.MemOverhead)/sim.Nanosecond)
	})
	t.AddRow("Remote memory latency", "120 ns", "120 ns", "120 ns")
	t.AddRow("Remote dirty latency", "180 ns", "180 ns", "180 ns")
	return FigureReport{ID: "table1", Title: "machine parameters", Text: t.String()}
}

// fig5Bars renders normalized execution-time bars with the paper's
// three-way breakdown.
func fig5Bars(title string, base Result, rs []Result) (string, map[string]float64) {
	bars := &stats.StackedBars{
		Title:    title,
		SegNames: []string{"CPU busy", "L2 hit stall", "L2 miss stall", "other"},
		Scale:    2.6,
	}
	metrics := map[string]float64{}
	for _, r := range rs {
		norm := r.TimePerTx / base.TimePerTx
		busy, hit, miss, other := r.Agg.Normalized(r.Agg.Total())
		bars.AddBar(r.Name, busy*norm, hit*norm, miss*norm, other*norm)
		metrics["norm_time_"+r.Name] = norm
	}
	return bars.String(), metrics
}

// Workload kinds re-exported for the benchmark harness.
const (
	OLTPKindForBench = core.OLTP
	DSSKindForBench  = core.DSS
)

// fig5Single runs the Figure-5 configuration set on one workload.
func fig5Single(kind core.WorkloadKind, s Scale) FigureReport {
	configs := []struct {
		name string
		sys  SystemConfig
	}{
		{"P1", P1()}, {"INO", INO()}, {"OOO", OOO()}, {"P8", P8()},
	}
	exps := make([]core.Experiment, len(configs))
	for i, c := range configs {
		exps[i] = core.Experiment{
			Name:      c.name,
			Sys:       c.sys,
			Work:      core.WorkloadSpec{Kind: kind},
			WarmTx:    s.Warm,
			MeasureTx: s.Measure,
		}
	}
	rs := runBatch(exps)
	var base Result
	for _, r := range rs {
		if r.Name == "OOO" {
			base = r
		}
	}
	body, metrics := fig5Bars(strings.ToUpper(string(kind))+" (normalized to OOO)", base, rs)
	return FigureReport{
		ID:      "fig5-" + string(kind),
		Title:   "single-chip execution time (" + string(kind) + ")",
		Text:    body,
		Results: rs,
		Metrics: metrics,
	}
}

// Fig5 reproduces Figure 5: single-chip OLTP and DSS execution time for
// P1, INO, OOO and P8, normalized to OOO, broken into CPU busy, L2 hit
// stall and L2 miss stall.
func Fig5(s Scale) FigureReport {
	var text strings.Builder
	metrics := map[string]float64{}
	var all []Result
	for _, kind := range []core.WorkloadKind{core.OLTP, core.DSS} {
		half := fig5Single(kind, s)
		text.WriteString(half.Text)
		text.WriteByte('\n')
		for k, v := range half.Metrics {
			metrics[string(kind)+"_"+k] = v
		}
		all = append(all, half.Results...)
	}
	return FigureReport{
		ID:      "fig5",
		Title:   "single-chip execution time, P1/INO/OOO/P8, OLTP and DSS",
		Text:    text.String(),
		Results: all,
		Metrics: metrics,
	}
}

// Fig6 reproduces Figure 6: (a) Piranha OLTP speedup vs on-chip core
// count and (b) the L1-miss breakdown (L2 hit / L2 fwd / L2 miss).
func Fig6(s Scale) FigureReport {
	var exps []core.Experiment
	for _, n := range []int{1, 2, 4, 8} {
		exps = append(exps, core.Experiment{
			Name:      fmt.Sprintf("P%d", n),
			Sys:       SystemConfig{Chips: 1, Chip: core.PiranhaChip(n)},
			Work:      core.WorkloadSpec{Kind: core.OLTP},
			WarmTx:    s.Warm,
			MeasureTx: s.Measure,
		})
	}
	rs := runBatch(exps)
	metrics := map[string]float64{}
	t := stats.NewTable("Fig 6a: OLTP speedup vs cores", "Config", "Speedup")
	for _, r := range rs {
		sp := rs[0].TimePerTx / r.TimePerTx
		t.AddRow(r.Name, sp)
		metrics["speedup_"+r.Name] = sp
	}
	bars := &stats.StackedBars{
		Title:    "Fig 6b: L1 miss breakdown (misses per tx, normalized to P1=100)",
		SegNames: []string{"L2 hit", "L2 fwd", "L2 miss"},
	}
	basePerTx := float64(rs[0].Miss.Total()) / float64(rs[0].Tx)
	for _, r := range rs {
		hit, fwd, miss := r.Miss.Fractions()
		perTx := float64(r.Miss.Total()) / float64(r.Tx) / basePerTx * 100
		bars.AddBar(r.Name, hit*perTx, fwd*perTx, miss*perTx)
		metrics["misshit_"+r.Name] = hit
		metrics["missfwd_"+r.Name] = fwd
		metrics["missmem_"+r.Name] = miss
	}
	return FigureReport{
		ID:      "fig6",
		Title:   "Piranha OLTP speedup and L1-miss breakdown vs core count",
		Text:    t.String() + "\n" + bars.String(),
		Results: rs,
		Metrics: metrics,
	}
}

// Fig7 reproduces Figure 7: OLTP speedup from one to four chips, Piranha
// (4 CPUs per chip, the OS-imposed 16-CPU limit) versus OOO chips.
func Fig7(s Scale) FigureReport {
	metrics := map[string]float64{}
	t := stats.NewTable("Fig 7: multi-chip OLTP speedup", "Chips", "Piranha (P4/chip)", "OOO")
	var all []Result
	var exps []core.Experiment
	for n := 1; n <= 4; n++ {
		exps = append(exps,
			core.Experiment{
				Name:      fmt.Sprintf("P4x%d", n),
				Sys:       MultiChip(n, 4),
				Work:      core.WorkloadSpec{Kind: core.OLTP},
				WarmTx:    s.Warm,
				MeasureTx: s.Measure,
			},
			core.Experiment{
				Name:      fmt.Sprintf("OOOx%d", n),
				Sys:       MultiChipOOO(n),
				Work:      core.WorkloadSpec{Kind: core.OLTP},
				WarmTx:    s.Warm,
				MeasureTx: s.Measure,
			})
	}
	rs := runBatch(exps)
	var p1, o1 Result
	for n := 1; n <= 4; n++ {
		rp, ro := rs[2*(n-1)], rs[2*(n-1)+1]
		if n == 1 {
			p1, o1 = rp, ro
			metrics["single_chip_P4_over_OOO"] = ro.TimePerTx / rp.TimePerTx
		}
		sp := p1.TimePerTx / rp.TimePerTx
		so := o1.TimePerTx / ro.TimePerTx
		t.AddRow(fmt.Sprintf("%d", n), sp, so)
		metrics[fmt.Sprintf("piranha_speedup_%dchips", n)] = sp
		metrics[fmt.Sprintf("ooo_speedup_%dchips", n)] = so
		all = append(all, rp, ro)
	}
	return FigureReport{
		ID:      "fig7",
		Title:   "multi-chip scaling, Piranha vs OOO",
		Text:    t.String(),
		Results: all,
		Metrics: metrics,
	}
}

// Fig8 reproduces Figure 8: the full-custom P8F against OOO on OLTP and
// DSS (and P8 for reference).
func Fig8(s Scale) FigureReport {
	var text strings.Builder
	metrics := map[string]float64{}
	var all []Result
	kinds := []core.WorkloadKind{core.OLTP, core.DSS}
	configs := []struct {
		name string
		sys  SystemConfig
	}{{"OOO", OOO()}, {"P8", P8()}, {"P8F", P8F()}}
	var exps []core.Experiment
	for _, kind := range kinds {
		for _, c := range configs {
			exps = append(exps, core.Experiment{
				Name: c.name, Sys: c.sys,
				Work:   core.WorkloadSpec{Kind: kind},
				WarmTx: s.Warm, MeasureTx: s.Measure,
			})
		}
	}
	batch := runBatch(exps)
	for ki, kind := range kinds {
		rs := batch[ki*len(configs) : (ki+1)*len(configs)]
		var base Result
		for _, r := range rs {
			if r.Name == "OOO" {
				base = r
			}
		}
		body, _ := fig5Bars(strings.ToUpper(string(kind))+" (normalized to OOO)", base, rs)
		text.WriteString(body)
		text.WriteByte('\n')
		for _, r := range rs {
			metrics[string(kind)+"_speedup_"+r.Name] = base.TimePerTx / r.TimePerTx
		}
		all = append(all, rs...)
	}
	return FigureReport{
		ID:      "fig8",
		Title:   "full-custom Piranha potential (P8F vs OOO)",
		Text:    text.String(),
		Results: all,
		Metrics: metrics,
	}
}

// TextTPCC reproduces the §4 claim that P8 outperforms OOO by over 3x on
// a TPC-C-like workload.
func TextTPCC(s Scale) FigureReport {
	tpcc := func(sys SystemConfig) core.Experiment {
		return core.Experiment{
			Name: "tpcc", Sys: sys,
			Work:   core.WorkloadSpec{Kind: core.TPCC},
			WarmTx: s.Warm, MeasureTx: s.Measure,
		}
	}
	rs := runBatch([]core.Experiment{tpcc(P8()), tpcc(OOO())})
	p8, ooo := rs[0], rs[1]
	sp := ooo.TimePerTx / p8.TimePerTx
	return FigureReport{
		ID:      "tpcc",
		Title:   "TPC-C-like workload, P8 vs OOO",
		Text:    fmt.Sprintf("P8 ns/tx=%.0f  OOO ns/tx=%.0f  speedup=%.2f\n", p8.TimePerTx, ooo.TimePerTx, sp),
		Results: []Result{p8, ooo},
		Metrics: map[string]float64{"speedup_P8_over_OOO": sp},
	}
}

// TextPessimistic reproduces the §4 sensitivity study: 400 MHz CPUs,
// 32 KB one-way L1s, 22/32 ns L2 — execution time grows ~29% but P8
// still holds ~2.25x over OOO.
func TextPessimistic(s Scale) FigureReport {
	oltp := func(sys SystemConfig) core.Experiment {
		return core.Experiment{
			Name: "oltp", Sys: sys,
			Work:   core.WorkloadSpec{Kind: core.OLTP},
			WarmTx: s.Warm, MeasureTx: s.Measure,
		}
	}
	rs := runBatch([]core.Experiment{oltp(P8()), oltp(Pessimistic()), oltp(OOO())})
	p8, pess, ooo := rs[0], rs[1], rs[2]
	slow := pess.TimePerTx/p8.TimePerTx - 1
	sp := ooo.TimePerTx / pess.TimePerTx
	return FigureReport{
		ID:    "pessimistic",
		Title: "pessimistic Piranha parameters",
		Text: fmt.Sprintf("P8 ns/tx=%.0f  pessimistic ns/tx=%.0f (+%.0f%%)  speedup over OOO=%.2f\n",
			p8.TimePerTx, pess.TimePerTx, slow*100, sp),
		Results: []Result{p8, pess, ooo},
		Metrics: map[string]float64{
			"slowdown_frac":         slow,
			"speedup_pess_over_OOO": sp,
		},
	}
}

// TextCacheTradeoff reproduces the §4 design-space note: trading CPUs
// for a larger L2 is not advantageous for Piranha — the L2-miss stall
// fraction is small (~22% at P8), so even a vastly larger L2 buys only a
// modest improvement, while halving the CPUs costs ~2x throughput.
func TextCacheTradeoff(s Scale) FigureReport {
	exp := func(name string, cpus, l2MB int) core.Experiment {
		cfg := core.PiranhaChip(cpus)
		cfg.L2.SizeBytes = l2MB << 20
		return core.Experiment{
			Name:      name,
			Sys:       SystemConfig{Chips: 1, Chip: cfg},
			Work:      core.WorkloadSpec{Kind: core.OLTP},
			WarmTx:    s.Warm,
			MeasureTx: s.Measure,
		}
	}
	rs := runBatch([]core.Experiment{
		exp("P8-1MB", 8, 1),
		exp("P8-8MB", 8, 8), // "even an infinite L2"
		exp("P4-8MB", 4, 8), // trade 4 CPUs for SRAM
	})
	p8, p8big, p4big := rs[0], rs[1], rs[2]
	gain := p8.TimePerTx/p8big.TimePerTx - 1
	trade := p8.TimePerTx / p4big.TimePerTx
	t := stats.NewTable("Sec 4: trading CPUs for L2 capacity (OLTP)",
		"Config", "ns/tx", "vs P8-1MB")
	for _, r := range []Result{p8, p8big, p4big} {
		t.AddRow(r.Name, r.TimePerTx, p8.TimePerTx/r.TimePerTx)
	}
	return FigureReport{
		ID:    "sec4-tradeoff",
		Title: "CPUs vs larger L2",
		Text: t.String() + fmt.Sprintf(
			"8x L2 buys only %.0f%%; halving CPUs for SRAM loses %.2fx\n", gain*100, 1/trade),
		Results: []Result{p8, p8big, p4big},
		Metrics: map[string]float64{
			"infinite_l2_gain_frac": gain,
			"p8_over_p4big":         1 / trade,
		},
	}
}

// AblationInclusion runs the paper's central L2 design choice head to
// head: the non-inclusive victim L2 (Piranha, §2.3) versus a
// conventional inclusive L2 of the same geometry. With 1 MB of
// aggregate L1s, inclusion wastes the 1 MB L2 on duplicates and pays
// back-invalidations; non-inclusion roughly doubles the usable on-chip
// memory ("adding CPUs actually increases the amount of on-chip
// memory... non-inclusion policy is effective in utilizing the total
// amount of on-chip cache memory").
func AblationInclusion(s Scale) FigureReport {
	exp := func(name string, inclusive bool) core.Experiment {
		cfg := core.PiranhaChip(8)
		cfg.L2.Inclusive = inclusive
		return core.Experiment{
			Name:      name,
			Sys:       SystemConfig{Chips: 1, Chip: cfg},
			Work:      core.WorkloadSpec{Kind: core.OLTP},
			WarmTx:    s.Warm,
			MeasureTx: s.Measure,
		}
	}
	rs := runBatch([]core.Experiment{exp("non-inclusive", false), exp("inclusive", true)})
	non, inc := rs[0], rs[1]
	t := stats.NewTable("Ablation: non-inclusive (Piranha) vs inclusive L2 (OLTP, P8)",
		"L2 policy", "ns/tx", "L2hit%", "fwd%", "mem%")
	for _, r := range []Result{non, inc} {
		h, f, m := r.Miss.Fractions()
		t.AddRow(r.Name, r.TimePerTx, h*100, f*100, m*100)
	}
	gain := inc.TimePerTx/non.TimePerTx - 1
	_, _, memNon := non.Miss.Fractions()
	_, _, memInc := inc.Miss.Fractions()
	return FigureReport{
		ID:    "ablation-inclusion",
		Title: "the no-inclusion design choice",
		Text: t.String() + fmt.Sprintf(
			"inclusion costs %.0f%% execution time; memory-served misses %.0f%% -> %.0f%%\n",
			gain*100, memNon*100, memInc*100),
		Results: []Result{non, inc},
		Metrics: map[string]float64{
			"inclusive_slowdown_frac": gain,
			"mem_miss_frac_noninc":    memNon,
			"mem_miss_frac_inclusive": memInc,
		},
	}
}

// Sec24OpenPage reproduces §2.4: sweeping the page-close timeout on an
// OLTP-like channel stream, keeping pages open ~1 us yields an open-page
// hit rate over 50%.
func Sec24OpenPage() FigureReport {
	t := stats.NewTable("Sec 2.4: RDRAM open-page hit rate vs close timeout",
		"Timeout (ns)", "Hit rate")
	metrics := map[string]float64{}
	for _, timeout := range []sim.Time{
		100 * sim.Nanosecond, 300 * sim.Nanosecond, 1 * sim.Microsecond,
		3 * sim.Microsecond, 10 * sim.Microsecond,
	} {
		cfg := memctl.DefaultConfig()
		cfg.CloseTimeout = timeout
		mc := memctl.New(cfg)
		rng := sim.NewRNG(42)
		// An OLTP memory-channel stream: a few concurrent sequential
		// runs (history/log appends, index-range and table reads)
		// interleaved with random block misses, at a busy channel's
		// OLTP arrival rate (~one line per 150 ns per bank).
		const streams = 3
		cursors := make([]cache.Addr, streams)
		for i := range cursors {
			cursors[i] = cache.Addr(i) << 26
		}
		now := sim.Time(0)
		for i := 0; i < 30000; i++ {
			if rng.Bool(0.25) {
				mc.Read(now, cache.Addr(rng.Uint64()%(1<<32)))
			} else {
				s := rng.Intn(streams)
				mc.Read(now, cursors[s])
				cursors[s] += cache.LineBytes
			}
			now += sim.Time(100+rng.Intn(100)) * sim.Nanosecond
		}
		t.AddRow(fmt.Sprintf("%d", timeout/sim.Nanosecond), mc.HitRate())
		metrics[fmt.Sprintf("hit_rate_%dns", timeout/sim.Nanosecond)] = mc.HitRate()
	}
	return FigureReport{
		ID:      "sec2.4",
		Title:   "open-page policy hit rate",
		Text:    t.String(),
		Metrics: metrics,
	}
}

// Sec253CMI reproduces the cruise-missile-invalidate study: injected
// messages, gathered acks and invalidation latency versus home-broadcast
// across system sizes, plus the bounded-buffering arithmetic.
func Sec253CMI() FigureReport {
	t := stats.NewTable("Sec 2.5.3: cruise-missile invalidates vs home broadcast",
		"Nodes", "Sharers", "CMI msgs", "Bcast msgs", "CMI lat (ns)", "Bcast lat (ns)")
	metrics := map[string]float64{}
	for _, tc := range []struct{ nodes, sharers int }{
		{16, 8}, {64, 16}, {256, 41}, {1024, 41},
	} {
		run := func(useCMI bool) (uint64, sim.Time) {
			cfg := pe.DefaultConfig(tc.nodes)
			cfg.UseCMI = useCMI
			f := pe.NewFabric(cfg, pe.NewFlatNetwork(25*sim.Nanosecond))
			return f.InvalidateStudy(tc.sharers)
		}
		cm, cl := run(true)
		bm, bl := run(false)
		t.AddRow(tc.nodes, tc.sharers, cm, bm, float64(cl)/float64(sim.Nanosecond), float64(bl)/float64(sim.Nanosecond))
		key := fmt.Sprintf("%dn_%dsharers", tc.nodes, tc.sharers)
		metrics["cmi_msgs_"+key] = float64(cm)
		metrics["bcast_msgs_"+key] = float64(bm)
		metrics["cmi_lat_ns_"+key] = float64(cl) / float64(sim.Nanosecond)
		metrics["bcast_lat_ns_"+key] = float64(bl) / float64(sim.Nanosecond)
	}
	// The buffering bound: 2 engines x 16 TSRF x 4 invalidations.
	metrics["buffer_headers_bound"] = 2 * 16 * 4
	return FigureReport{
		ID:      "sec2.5.3-cmi",
		Title:   "bounded invalidation messages",
		Text:    t.String() + "buffer bound: 2 engines x 16 TSRF x 4 invals = 128 message headers\n",
		Metrics: metrics,
	}
}

// Sec253NoNAK compares the Piranha protocol with the DASH-style
// NAK/retry baseline: messages per transaction, home-engine occupancy,
// NAKs and retries under a conflict-heavy load.
func Sec253NoNAK() FigureReport {
	t := stats.NewTable("Sec 2.5.3: NAK-free protocol vs DASH-style baseline",
		"Protocol", "Msgs/txn", "HE busy (ns/txn)", "NAKs", "Retries")
	metrics := map[string]float64{}
	for _, baseline := range []bool{false, true} {
		name := "piranha-no-nak"
		if baseline {
			name = "dash-baseline"
		}
		msgs, occ, naks, retries, txns := pe.ContentionStudy(baseline, 4, 2000)
		t.AddRow(name,
			float64(msgs)/float64(txns),
			float64(occ)/float64(txns)/float64(sim.Nanosecond),
			naks, retries)
		metrics["msgs_per_txn_"+name] = float64(msgs) / float64(txns)
		metrics["he_occ_ns_per_txn_"+name] = float64(occ) / float64(txns) / float64(sim.Nanosecond)
		metrics["naks_"+name] = float64(naks)
	}
	return FigureReport{
		ID:      "sec2.5.3-nonak",
		Title:   "protocol message and occupancy comparison",
		Text:    t.String(),
		Metrics: metrics,
	}
}

// Sec251Microcode reproduces the protocol-engine microcode numbers: a
// remote read costs four instructions at the remote engine, and the
// reference handlers fit comfortably in the 1024-word store.
func Sec251Microcode() FigureReport {
	re, he, words, err := useq.RemoteReadCounts()
	text := ""
	if err != nil {
		text = "error: " + err.Error() + "\n"
	} else {
		text = fmt.Sprintf("remote engine instructions per read: %d (paper: 4)\n"+
			"home engine instructions per read:   %d\n"+
			"microcode store used: %d / %d words\n", re, he, words, useq.StoreSize)
	}
	return FigureReport{
		ID:    "sec2.5.1",
		Title: "microcoded protocol engine",
		Text:  text,
		Metrics: map[string]float64{
			"re_instructions": float64(re),
			"he_instructions": float64(he),
			"store_words":     float64(words),
		},
	}
}

// Sec261LinkCode reproduces the link-layer properties: DC balance,
// inversion insensitivity, and recovery under injected wire errors.
func Sec261LinkCode() FigureReport {
	ch := link.NewChannel(0.001, 7)
	frame := make([]byte, 64)
	for i := range frame {
		frame[i] = byte(i * 7)
	}
	lost := 0
	for i := 0; i < 500; i++ {
		if _, err := ch.Transmit(frame, 64); err != nil {
			lost++
		}
	}
	text := fmt.Sprintf("words sent: %d  inverted: %d (%.1f%%)\n"+
		"word errors detected: %d  CRC catches: %d  retransmits: %d  frames lost: %d\n",
		ch.WordsSent, ch.InvertedWords, 100*float64(ch.InvertedWords)/float64(ch.WordsSent),
		ch.WordErrors, ch.CRCErrors, ch.Retransmits, lost)
	return FigureReport{
		ID:    "sec2.6.1",
		Title: "DC-balanced link code under injected errors",
		Text:  text,
		Metrics: map[string]float64{
			"frames_lost":    float64(lost),
			"inverted_share": float64(ch.InvertedWords) / float64(ch.WordsSent),
		},
	}
}

// Fig9Area reproduces the floorplan proportions: ~75% of the processing
// node in CPUs and caches.
func Fig9Area() FigureReport {
	f := area.PiranhaNode(area.ASIC018())
	return FigureReport{
		ID:    "fig9",
		Title: "processing-node floorplan",
		Text:  f.String(),
		Metrics: map[string]float64{
			"core_cache_fraction": f.CoreCacheFraction(),
			"total_mm2":           float64(f.Total()),
		},
	}
}

// DirectoryNote documents the ECC-based directory storage arithmetic
// (§2.5.2) as a checkable artifact.
func DirectoryNote() FigureReport {
	spare := directorySpareBits()
	text := fmt.Sprintf("ECC at 256-bit granularity leaves %d spare bits per 64-byte line;\n"+
		"directory entry: 2 state bits + 42 sharer bits (4x10-bit pointers, coarse vector past %d sharers)\n",
		spare, directory.MaxPointers)
	return FigureReport{
		ID:      "sec2.5.2",
		Title:   "directory in ECC spare bits",
		Text:    text,
		Metrics: map[string]float64{"spare_bits": float64(spare)},
	}
}

func directorySpareBits() int {
	return ecc.SpareBitsPerLine(cache.LineBytes, ecc.DataBits)
}

// ScalingSuite renders the N-node scaling section: weak-scaling OLTP
// and DSS sweeps over the glueless 2-D torus machines (§2.6's design
// target is 1024 nodes). Paper scale runs the full 8→1024 sweep; quick
// scale stops at 64 nodes. The suite is opt-in (figures -only scaling)
// so the default figures_output.txt golden is unchanged.
func ScalingSuite(s Scale) FigureReport {
	nodes := DefaultScalingNodes
	if s.Measure <= QuickScale.Measure {
		nodes = []int{8, 32, 64}
	}
	metrics := map[string]float64{}
	var text strings.Builder
	var all []Result
	for _, kind := range []core.WorkloadKind{core.OLTP, core.DSS} {
		sw := RunScalingSweep(Workload{Kind: kind}, ScalingSweep{Nodes: nodes})
		fmt.Fprintln(&text, sw)
		for _, p := range sw.Points {
			metrics[fmt.Sprintf("%s_speedup_%dn", kind, p.Nodes)] = p.Speedup
			metrics[fmt.Sprintf("%s_efficiency_%dn", kind, p.Nodes)] = p.Efficiency
			all = append(all, p.Result)
		}
	}
	return FigureReport{
		ID:      "scaling",
		Title:   fmt.Sprintf("glueless scale-out, %d→%d nodes", nodes[0], nodes[len(nodes)-1]),
		Text:    text.String(),
		Results: all,
		Metrics: metrics,
	}
}
