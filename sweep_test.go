package piranha

import (
	"encoding/json"
	"strings"
	"testing"

	"piranha/internal/core"
	"piranha/internal/workload"
)

// TestLoadSweepHockeyStick runs a three-point sweep bracketing capacity
// on P4/OLTP: the overloaded point must be detected as saturated and
// its tail latency must dominate the light point's.
func TestLoadSweepHockeyStick(t *testing.T) {
	s := RunLoadSweep(P4(), OLTP(), LoadSweep{
		Multipliers: []float64{0.3, 0.7, 1.4},
		Scale:       tiny,
		Seed:        7,
	})
	if s.CapacityTxS <= 0 {
		t.Fatalf("calibration produced capacity %v", s.CapacityTxS)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points %d", len(s.Points))
	}
	if s.Saturation < 0 {
		t.Fatalf("1.4x capacity not detected as saturated:\n%s", s)
	}
	light, over := s.Points[0], s.Points[2]
	if over.P99Ns <= light.P99Ns {
		t.Fatalf("p99 did not grow past capacity: %v vs %v", over.P99Ns, light.P99Ns)
	}
	if light.AchievedTxS < 0.9*light.OfferedTxS {
		t.Fatalf("light point should keep up: offered %v achieved %v",
			light.OfferedTxS, light.AchievedTxS)
	}
	out := s.String()
	if !strings.Contains(out, "saturates at") || !strings.Contains(out, "p99 vs load") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestLoadSweepDeterministic is the campaign half of the determinism
// contract: the full sweep JSON is byte-identical across reruns and
// batch worker counts.
func TestLoadSweepDeterministic(t *testing.T) {
	run := func() string {
		s := RunLoadSweep(P4(), OLTP(), LoadSweep{
			Multipliers: []float64{0.5, 1.1},
			Scale:       tiny,
			Seed:        7,
		})
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := run()
	SetParallelism(4)
	parallel := run()
	SetParallelism(0)
	if serial != parallel {
		t.Fatal("sweep JSON differs between serial and parallel batch execution")
	}
	if run() != serial {
		t.Fatal("sweep JSON differs between reruns")
	}
}

// TestOpenLoopOptionsWiring checks WithArrivals/WithOfferedLoad
// assemble exactly the experiment the escape hatch would run. Open-loop
// results hold pointers, so equality is via the versioned JSON.
func TestOpenLoopOptionsWiring(t *testing.T) {
	asJSON := func(r Result) string {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	got := Run(P4(), OLTP(), WithScale(tiny), WithSeed(9), WithOfferedLoad(2e5))
	want := RunExperiment(Experiment{
		Name:      "oltp",
		Sys:       P4(),
		Work:      core.WorkloadSpec{Kind: core.OLTP, Arrivals: workload.ArrivalSpec{Rate: 2e5}},
		WarmTx:    tiny.Warm,
		MeasureTx: tiny.Measure,
		Seed:      9,
	})
	if asJSON(got) != asJSON(want) {
		t.Fatal("WithOfferedLoad diverged from the experiment descriptor")
	}

	spec := Arrivals{Process: ArrivalMMPP, Rate: 1.5e5, Burst: 4, Capacity: 128}
	got = Run(P4(), OLTP(), WithScale(tiny), WithArrivals(spec))
	want = RunExperiment(Experiment{
		Name:      "oltp",
		Sys:       P4(),
		Work:      core.WorkloadSpec{Kind: core.OLTP, Arrivals: spec},
		WarmTx:    tiny.Warm,
		MeasureTx: tiny.Measure,
	})
	if asJSON(got) != asJSON(want) {
		t.Fatal("WithArrivals diverged from the experiment descriptor")
	}
	if got.Lat == nil || got.Admission == nil {
		t.Fatal("open-loop option produced no latency/admission blocks")
	}
}
