package piranha

import (
	"testing"
	"time"
)

// faultScale keeps the fault tests fast; the campaigns only need enough
// transactions for every fault class to fire.
var faultScale = Scale{Warm: 20, Measure: 60}

// testPlan is an aggressive campaign: every class fires within a short
// run, and recovery sweeps are frequent so lost transactions heal fast.
func testPlan() FaultPlan {
	return FaultPlan{
		LinkBER:       2e-5,
		MsgLoss:       0.05,
		MemFlip:       1e-3,
		MemDoubleFrac: 0.2,
		StallProb:     1e-5,
		Mirrored:      true,
		SweepPeriod:   10 * 1000 * 1000, // 10 us in ps
		Timeout:       4 * 1000 * 1000,  // 4 us in ps
	}
}

// TestZeroRatePlanIdentical: a zero-rate fault plan must be inert — the
// Result (counters, elapsed time, everything) is identical to a run that
// never heard of fault injection.
func TestZeroRatePlanIdentical(t *testing.T) {
	base := Run(P2(), OLTP(), WithSeed(11), WithScale(faultScale))
	faulted := Run(P2(), OLTP(), WithSeed(11), WithScale(faultScale), WithFaults(FaultPlan{}))
	if faulted.Faults != nil {
		t.Fatalf("zero-rate plan produced a Faults block: %+v", *faulted.Faults)
	}
	if base != faulted {
		t.Errorf("zero-rate plan perturbed the run:\n base   %+v\n faults %+v", base, faulted)
	}

	multi := Run(MultiChip(2, 2), OLTP(), WithSeed(11), WithScale(faultScale))
	multiF := Run(MultiChip(2, 2), OLTP(), WithSeed(11), WithScale(faultScale), WithFaults(FaultPlan{}))
	if multi != multiF {
		t.Errorf("zero-rate plan perturbed the multi-chip run:\n base   %+v\n faults %+v", multi, multiF)
	}
}

// TestFaultCampaignDeterministic: a fixed seed and nonzero rates must
// reproduce identical fault counters and timing across reruns.
func TestFaultCampaignDeterministic(t *testing.T) {
	run := func() Result {
		return Run(MultiChip(2, 2), OLTP(), WithSeed(5), WithScale(faultScale),
			WithFaults(testPlan()))
	}
	a, b := run(), run()
	if a.Faults == nil || b.Faults == nil {
		t.Fatal("campaign produced no Faults block")
	}
	if *a.Faults != *b.Faults {
		t.Errorf("fault counters diverged across reruns:\n a %+v\n b %+v", *a.Faults, *b.Faults)
	}
	if a.Elapsed != b.Elapsed || a.Tx != b.Tx {
		t.Errorf("timing diverged across reruns: %d/%d vs %d/%d", a.Elapsed, a.Tx, b.Elapsed, b.Tx)
	}
	if a.Faults.Injected == 0 {
		t.Errorf("aggressive plan injected nothing: %+v", *a.Faults)
	}
}

// TestLostRepliesRecovered: message loss on the inter-chip fabric must
// strand TSRF entries that the periodic recovery sweep then reclaims —
// the run completes (watchdog silent) and the counters show the healing.
func TestLostRepliesRecovered(t *testing.T) {
	res := Run(MultiChip(2, 2), OLTP(), WithSeed(5), WithScale(faultScale),
		WithIntervals(10*time.Microsecond),
		WithFaults(testPlan()))
	fs := res.Faults
	if fs == nil {
		t.Fatal("no Faults block")
	}
	if fs.MessagesLost == 0 {
		t.Fatalf("no messages lost at 5%% loss: %+v", *fs)
	}
	if fs.Recovered == 0 || fs.RecoveryLatency == 0 {
		t.Errorf("losses never recovered: %+v", *fs)
	}
	if fs.SweepReclaims == 0 {
		t.Errorf("recovery sweep reclaimed nothing despite %d losses: %+v", fs.MessagesLost, *fs)
	}
	// The recovery-latency series rides the interval sampler.
	recoveries := uint64(0)
	for _, b := range res.Series.Bins {
		recoveries += b.Recoveries
	}
	if recoveries != fs.Recovered {
		t.Errorf("series recoveries %d != counter %d", recoveries, fs.Recovered)
	}
}

// TestUncorrectableEscalatesToMirror: with a mirrored plan, double-bit
// memory errors fail over to the mirror (ras.Failover) instead of
// counting unrecoverable.
func TestUncorrectableEscalatesToMirror(t *testing.T) {
	plan := FaultPlan{MemFlip: 5e-3, MemDoubleFrac: 1, Mirrored: true}
	res := Run(P2(), OLTP(), WithSeed(5), WithScale(faultScale), WithFaults(plan))
	fs := res.Faults
	if fs == nil || fs.MemFlips == 0 {
		t.Fatalf("no memory faults injected: %+v", fs)
	}
	if fs.MemFailovers == 0 || fs.MemUnrecoverable != 0 {
		t.Errorf("mirrored plan: failovers=%d unrecoverable=%d, want all failovers: %+v",
			fs.MemFailovers, fs.MemUnrecoverable, *fs)
	}

	// Unmirrored, the same errors count unrecoverable.
	plan.Mirrored = false
	res = Run(P2(), OLTP(), WithSeed(5), WithScale(faultScale), WithFaults(plan))
	if res.Faults.MemUnrecoverable == 0 || res.Faults.MemFailovers != 0 {
		t.Errorf("unmirrored plan: failovers=%d unrecoverable=%d, want all unrecoverable",
			res.Faults.MemFailovers, res.Faults.MemUnrecoverable)
	}
}
