// Package piranha is the public API of the Piranha simulator — a Go
// reproduction of "Piranha: A Scalable Architecture Based on Single-Chip
// Multiprocessing" (Barroso et al., ISCA 2000).
//
// The package exposes the paper's Table-1 machine configurations, the
// OLTP/DSS/TPC-C-style workloads, and an experiment runner producing the
// metrics the paper reports: per-transaction execution time with its
// CPU-busy / L2-hit-stall / L2-miss-stall breakdown (Figure 5), the
// L1-miss service breakdown (Figure 6b), and multi-chip scaling
// (Figure 7). Lower-level machinery lives in internal/: the event kernel
// (sim), caches (cache, l1, l2), memory controllers (memctl), protocol
// engines and inter-node coherence (pe, directory, ecc), interconnect
// (noc, link), processor models (cpu, isa), OS model (kernel), workload
// generators (workload), the microcode engine (useq), the I/O node
// (ionode) and the area model (area).
//
// Quick start:
//
//	res := piranha.Run(piranha.P8(), piranha.OLTP())
//	fmt.Println(res)
//
// Runs are configured with functional options:
//
//	var buf bytes.Buffer
//	res := piranha.Run(piranha.P8(), piranha.OLTP(),
//		piranha.WithScale(piranha.PaperScale),
//		piranha.WithSeed(7),
//		piranha.WithIntervals(2*time.Microsecond),  // Result.Series
//		piranha.WithTrace(&buf),                    // Chrome/Perfetto JSON
//	)
package piranha

import (
	"io"
	"time"

	"piranha/internal/core"
	"piranha/internal/fault"
	"piranha/internal/kernel"
	"piranha/internal/noc"
	"piranha/internal/ras"
	"piranha/internal/sim"
	"piranha/internal/trace"
	"piranha/internal/workload"
)

// Result is the outcome of one simulation (see core.Result).
type Result = core.Result

// Experiment re-exports the full experiment descriptor for advanced use.
type Experiment = core.Experiment

// SystemConfig describes a machine (chips x chip configuration).
type SystemConfig = core.SystemConfig

// Workload names a workload and its configuration knobs.
type Workload = core.WorkloadSpec

// FaultPlan describes a deterministic fault-injection campaign: per-class
// rates (link bit errors, protocol-message loss, memory bit flips,
// transient node stalls) plus the recovery parameters. The zero value is
// the perfect machine. See WithFaults.
type FaultPlan = fault.Plan

// FaultStats is the per-run fault counter block (Result.Faults).
type FaultStats = fault.Stats

// NodeFailure is one scheduled fail-stop node death in a FaultPlan: the
// chip dies At picoseconds into the measured window, and recovery runs
// the RAS-mirror takeover, directory reconstruction sweep, and kernel
// process migration. See FaultPlan.FailStop.
type NodeFailure = fault.NodeFailure

// Recovery is the fail-stop recovery block (Result.Recovery): per-node
// MTTR timelines and the degraded-mode capacity fraction.
type Recovery = fault.Recovery

// Arrivals describes an open-loop arrival stream: the process shape
// (Poisson, bursty MMPP, diurnal), the mean offered rate in transactions
// per second of simulated time, the admission-queue capacity, and an
// optional multi-tenant mix. The zero value is the classic closed-loop
// mode. See WithArrivals.
type Arrivals = workload.ArrivalSpec

// TenantShare is one entry of a multi-tenant Arrivals.Mix.
type TenantShare = workload.TenantShare

// AdmissionStats is the per-run admission-queue counter block
// (Result.Admission) for open-loop runs.
type AdmissionStats = kernel.AdmissionStats

// Arrival process names for Arrivals.Process.
const (
	ArrivalPoisson = workload.ArrivalPoisson
	ArrivalMMPP    = workload.ArrivalMMPP
	ArrivalDiurnal = workload.ArrivalDiurnal
)

// Workload constructors for the paper's four workload families.

// OLTP is the TPC-B-style transaction mix (§3.1).
func OLTP() Workload { return Workload{Kind: core.OLTP} }

// DSS is the TPC-D Query-6-style scan (§3.1).
func DSS() Workload { return Workload{Kind: core.DSS} }

// TPCC is the heavier TPC-C-style mix (§4).
func TPCC() Workload { return Workload{Kind: core.TPCC} }

// Web is the §6 AltaVista-style search workload.
func Web() Workload { return Workload{Kind: core.WEB} }

// Table-1 configurations (single-chip unless stated).

// P8 is the Piranha prototype: eight 500 MHz single-issue in-order cores,
// 64 KB 2-way L1s, 1 MB 8-way shared non-inclusive L2 (16/24 ns).
func P8() SystemConfig {
	return SystemConfig{Chips: 1, Chip: core.PiranhaChip(8)}
}

// P1, P2 and P4 are hypothetical Piranha chips with fewer cores.
func P1() SystemConfig { return SystemConfig{Chips: 1, Chip: core.PiranhaChip(1)} }

// P2 is the two-core Piranha point of Figure 6.
func P2() SystemConfig { return SystemConfig{Chips: 1, Chip: core.PiranhaChip(2)} }

// P4 is the four-core Piranha chip (also used per chip in Figure 7).
func P4() SystemConfig { return SystemConfig{Chips: 1, Chip: core.PiranhaChip(4)} }

// OOO is the aggressive next-generation processor: 1 GHz, 4-issue,
// 64-entry window, 1.5 MB 6-way L2 at 12 ns (Alpha 21364-like).
func OOO() SystemConfig { return SystemConfig{Chips: 1, Chip: core.OOOChip()} }

// INO is the OOO chip restricted to single-issue in-order (Table 1's
// intermediate design point).
func INO() SystemConfig { return SystemConfig{Chips: 1, Chip: core.INOChip()} }

// P8F is the full-custom Piranha: 1.25 GHz cores, 1.5 MB 6-way L2 at
// 12/16 ns.
func P8F() SystemConfig {
	return SystemConfig{Chips: 1, Chip: core.FullCustomChip(8)}
}

// Pessimistic is the §4 sensitivity point: 400 MHz cores, 32 KB
// direct-mapped L1s, 22/32 ns L2.
func Pessimistic() SystemConfig {
	return SystemConfig{Chips: 1, Chip: core.PessimisticPiranhaChip(8)}
}

// MultiChip returns n chips of cpusPerChip Piranha cores on the glueless
// interconnect.
func MultiChip(n, cpusPerChip int) SystemConfig {
	return SystemConfig{Chips: n, Chip: core.PiranhaChip(cpusPerChip)}
}

// MultiChipOOO returns n OOO chips on the same interconnect fabric.
func MultiChipOOO(n int) SystemConfig {
	return SystemConfig{Chips: n, Chip: core.OOOChip()}
}

// ScaleOut returns the glueless scale-out machine of paper Figure 3 /
// §2.6: n Piranha chips with cpusPerChip cores each on a 2-D torus
// (the most-square W x H factorization of n), backed by the
// packet-level router model so inter-node latency grows with torus
// distance instead of staying flat. The paper's design target is
// n up to 1024 nodes; ScaleOut64 through ScaleOut1024 are the preset
// points of the scaling suite.
func ScaleOut(n, cpusPerChip int) SystemConfig {
	w, h := torusDims(n)
	return SystemConfig{
		Chips:    n,
		Chip:     core.PiranhaChip(cpusPerChip),
		Topology: noc.Torus{W: w, H: h},
	}
}

// torusDims returns the most-square W x H factorization of n (W <= H).
func torusDims(n int) (w, h int) {
	if n < 1 {
		n = 1
	}
	for w = 1; (w+1)*(w+1) <= n; w++ {
	}
	for ; n%w != 0; w-- {
	}
	return w, n / w
}

// Scale-out presets: single-core Piranha chips on 2-D tori, the node
// counts of the paper's scaling argument (§2.6 targets up to 1024).
func ScaleOut8() SystemConfig    { return ScaleOut(8, 1) }
func ScaleOut32() SystemConfig   { return ScaleOut(32, 1) }
func ScaleOut64() SystemConfig   { return ScaleOut(64, 1) }
func ScaleOut256() SystemConfig  { return ScaleOut(256, 1) }
func ScaleOut1024() SystemConfig { return ScaleOut(1024, 1) }

// Option configures a Run.
type Option func(*runConfig)

// runConfig collects an experiment plus the run-scoped concerns that do
// not belong in the experiment descriptor (where the trace goes).
type runConfig struct {
	exp      core.Experiment
	traceW   io.Writer
	traceCap int
}

// WithName labels the run's Result (default: the workload kind).
func WithName(name string) Option {
	return func(rc *runConfig) { rc.exp.Name = name }
}

// WithSeed sets the workload RNG seed (0 selects the default).
func WithSeed(seed uint64) Option {
	return func(rc *runConfig) { rc.exp.Seed = seed }
}

// WithScale sets the warm-up and measured transaction counts.
func WithScale(s Scale) Option {
	return func(rc *runConfig) { rc.exp.WarmTx, rc.exp.MeasureTx = s.Warm, s.Measure }
}

// WithIntervals samples machine-wide busy/stall/miss activity per window
// of simulated time d into Result.Series.
func WithIntervals(d time.Duration) Option {
	return func(rc *runConfig) { rc.exp.Intervals = sim.Time(d.Nanoseconds()) * sim.Nanosecond }
}

// WithTrace records component events during the measured phase and
// writes them to w as Chrome trace-event JSON (loadable in Perfetto)
// when the run completes. Timestamps are simulated time only, so the
// bytes are identical no matter where or how concurrently the run
// executed.
func WithTrace(w io.Writer) Option {
	return func(rc *runConfig) { rc.traceW = w }
}

// WithTraceCapacity bounds the trace ring buffer to the most recent n
// events (0 selects the default; see trace.DefaultCapacity).
func WithTraceCapacity(n int) Option {
	return func(rc *runConfig) { rc.traceCap = n }
}

// WithIntraParallel runs the simulation itself on n phase workers using
// two-phase partitioned event execution: the timing model is one
// partition whose event history never changes, while workload op
// generation and process construction run concurrently on the workers
// between conservative sync points derived from the machine's minimum
// ICS/link/noc latencies. Every reported number, figure line, and trace
// byte is identical to the serial engine's — n changes wall-clock time
// only. n <= 1, a P1-sized machine, or a zero-lookahead system select
// the serial engine.
func WithIntraParallel(n int) Option {
	return func(rc *runConfig) { rc.exp.IntraWorkers = n }
}

// WithFaults runs the simulation under a deterministic fault-injection
// plan: link words corrupt at the plan's bit-error rate (paying real
// retransmit latency through the link-layer CRC handshake), protocol
// messages are lost and healed by periodic TSRF timeout recovery, memory
// reads flip bits through the SECDED decode path, and nodes transiently
// stall. Counters land in Result.Faults. A mirrored plan escalates
// uncorrectable memory errors to ras mirroring failover. A zero-rate
// plan is inert: the run is byte-identical to one without this option.
func WithFaults(p FaultPlan) Option {
	return func(rc *runConfig) {
		rc.exp.Faults = p
		if p.Mirrored && rc.exp.FaultEscalate == nil {
			rc.exp.FaultEscalate = ras.NewFailover(p.MirrorLatency).Uncorrectable
		}
		if len(p.FailStop) > 0 && rc.exp.FaultAdopt == nil {
			// Fail-stop recovery always has a mirror: the dead home's
			// memory (and its in-memory directory) fails over to it.
			rc.exp.FaultAdopt = ras.NewFailover(p.MirrorLatency).Takeover
		}
	}
}

// WithArrivals switches the run to open-loop: transactions arrive on
// the described deterministic seeded stochastic process, wait in the
// kernel's bounded admission queue for a server process (shedding past
// the capacity bound), and Result grows Lat (an arrival→completion
// latency sketch reporting p50/p90/p99/p999) and Admission blocks.
// A zero-rate spec is inert: the run is byte-identical to one without
// this option — the same contract as WithFaults.
func WithArrivals(a Arrivals) Option {
	return func(rc *runConfig) { rc.exp.Work.Arrivals = a }
}

// WithOfferedLoad is shorthand for WithArrivals with a Poisson stream at
// rate transactions per second of simulated time and an unbounded
// admission queue.
func WithOfferedLoad(rate float64) Option {
	return func(rc *runConfig) { rc.exp.Work.Arrivals = Arrivals{Rate: rate} }
}

// Run simulates one workload on one machine configuration. Options
// configure scale, seed, naming, interval metrics and tracing; the
// zero-option call runs the library defaults (200 measured transactions,
// no warm-up, tracing off).
func Run(sys SystemConfig, w Workload, opts ...Option) Result {
	rc := runConfig{exp: core.Experiment{Sys: sys, Work: w}}
	for _, o := range opts {
		o(&rc)
	}
	if rc.exp.Name == "" {
		if w.Kind == "" {
			rc.exp.Name = string(core.OLTP)
		} else {
			rc.exp.Name = string(w.Kind)
		}
	}
	if rc.traceW != nil {
		rc.exp.Trace = trace.New(rc.traceCap)
	}
	r := core.Run(rc.exp)
	if rc.traceW != nil {
		if err := rc.exp.Trace.WriteChrome(rc.traceW, 0, rc.exp.Name); err != nil {
			panic("piranha: trace export: " + err.Error())
		}
	}
	return r
}

// RunExperiment executes a fully-specified experiment descriptor (the
// escape hatch under the option API; RunBatch consumes the same type).
func RunExperiment(e Experiment) Result { return core.Run(e) }

// RunBatch executes independent experiments concurrently on a bounded
// worker pool (see SetParallelism) and returns results in input order.
// Every experiment owns a private engine and seeded RNG, so the batch is
// deterministic: RunBatch yields exactly what a serial loop over Run
// would, only faster on multi-core hosts.
func RunBatch(exps []Experiment) []Result { return runBatch(exps) }

// Scale multiplies all transaction counts in the figure harnesses;
// useful to trade precision for speed.
type Scale struct {
	Warm, Measure uint64
}

// QuickScale is fast and noisy (tests); PaperScale approximates the
// paper's "500 transactions after a warm-up period".
var (
	QuickScale = Scale{Warm: 50, Measure: 100}
	PaperScale = Scale{Warm: 200, Measure: 500}
)

// OLTPConfig and DSSConfig re-export the workload knobs.
type OLTPConfig = workload.OLTPConfig

// DSSConfig re-exports the DSS scan parameters.
type DSSConfig = workload.DSSConfig

// Nanoseconds converts a simulated duration for reporting.
func Nanoseconds(t sim.Time) float64 { return float64(t) / float64(sim.Nanosecond) }

// Simulated-time units, for scheduling absolute instants like
// NodeFailure.At (sim.Time counts picoseconds).
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)
