// Package piranha is the public API of the Piranha simulator — a Go
// reproduction of "Piranha: A Scalable Architecture Based on Single-Chip
// Multiprocessing" (Barroso et al., ISCA 2000).
//
// The package exposes the paper's Table-1 machine configurations, the
// OLTP/DSS/TPC-C-style workloads, and an experiment runner producing the
// metrics the paper reports: per-transaction execution time with its
// CPU-busy / L2-hit-stall / L2-miss-stall breakdown (Figure 5), the
// L1-miss service breakdown (Figure 6b), and multi-chip scaling
// (Figure 7). Lower-level machinery lives in internal/: the event kernel
// (sim), caches (cache, l1, l2), memory controllers (memctl), protocol
// engines and inter-node coherence (pe, directory, ecc), interconnect
// (noc, link), processor models (cpu, isa), OS model (kernel), workload
// generators (workload), the microcode engine (useq), the I/O node
// (ionode) and the area model (area).
//
// Quick start:
//
//	res := piranha.RunOLTP(piranha.P8(), 100, 200)
//	fmt.Println(res)
package piranha

import (
	"piranha/internal/core"
	"piranha/internal/sim"
	"piranha/internal/workload"
)

// Result is the outcome of one simulation (see core.Result).
type Result = core.Result

// Experiment re-exports the full experiment descriptor for advanced use.
type Experiment = core.Experiment

// SystemConfig describes a machine (chips x chip configuration).
type SystemConfig = core.SystemConfig

// Table-1 configurations (single-chip unless stated).

// P8 is the Piranha prototype: eight 500 MHz single-issue in-order cores,
// 64 KB 2-way L1s, 1 MB 8-way shared non-inclusive L2 (16/24 ns).
func P8() SystemConfig {
	return SystemConfig{Chips: 1, Chip: core.PiranhaChip(8)}
}

// P1, P2 and P4 are hypothetical Piranha chips with fewer cores.
func P1() SystemConfig { return SystemConfig{Chips: 1, Chip: core.PiranhaChip(1)} }

// P2 is the two-core Piranha point of Figure 6.
func P2() SystemConfig { return SystemConfig{Chips: 1, Chip: core.PiranhaChip(2)} }

// P4 is the four-core Piranha chip (also used per chip in Figure 7).
func P4() SystemConfig { return SystemConfig{Chips: 1, Chip: core.PiranhaChip(4)} }

// OOO is the aggressive next-generation processor: 1 GHz, 4-issue,
// 64-entry window, 1.5 MB 6-way L2 at 12 ns (Alpha 21364-like).
func OOO() SystemConfig { return SystemConfig{Chips: 1, Chip: core.OOOChip()} }

// INO is the OOO chip restricted to single-issue in-order (Table 1's
// intermediate design point).
func INO() SystemConfig { return SystemConfig{Chips: 1, Chip: core.INOChip()} }

// P8F is the full-custom Piranha: 1.25 GHz cores, 1.5 MB 6-way L2 at
// 12/16 ns.
func P8F() SystemConfig {
	return SystemConfig{Chips: 1, Chip: core.FullCustomChip(8)}
}

// Pessimistic is the §4 sensitivity point: 400 MHz cores, 32 KB
// direct-mapped L1s, 22/32 ns L2.
func Pessimistic() SystemConfig {
	return SystemConfig{Chips: 1, Chip: core.PessimisticPiranhaChip(8)}
}

// MultiChip returns n chips of cpusPerChip Piranha cores on the glueless
// interconnect.
func MultiChip(n, cpusPerChip int) SystemConfig {
	return SystemConfig{Chips: n, Chip: core.PiranhaChip(cpusPerChip)}
}

// MultiChipOOO returns n OOO chips on the same interconnect fabric.
func MultiChipOOO(n int) SystemConfig {
	return SystemConfig{Chips: n, Chip: core.OOOChip()}
}

// RunOLTP measures the TPC-B-style workload: warm transactions of cache
// warmup, then measure transactions of measurement.
func RunOLTP(sys SystemConfig, warm, measure uint64) Result {
	return core.Run(core.Experiment{
		Name:      "oltp",
		Sys:       sys,
		Work:      core.WorkloadSpec{Kind: core.OLTP},
		WarmTx:    warm,
		MeasureTx: measure,
	})
}

// RunDSS measures the TPC-D Query-6-style scan.
func RunDSS(sys SystemConfig, warm, measure uint64) Result {
	return core.Run(core.Experiment{
		Name:      "dss",
		Sys:       sys,
		Work:      core.WorkloadSpec{Kind: core.DSS},
		WarmTx:    warm,
		MeasureTx: measure,
	})
}

// RunWeb measures the §6 AltaVista-style search workload, which behaves
// like DSS: compute-bound index scans with abundant thread parallelism.
func RunWeb(sys SystemConfig, warm, measure uint64) Result {
	return core.Run(core.Experiment{
		Name:      "web",
		Sys:       sys,
		Work:      core.WorkloadSpec{Kind: core.WEB},
		WarmTx:    warm,
		MeasureTx: measure,
	})
}

// RunTPCC measures the heavier TPC-C-style mix.
func RunTPCC(sys SystemConfig, warm, measure uint64) Result {
	return core.Run(core.Experiment{
		Name:      "tpcc",
		Sys:       sys,
		Work:      core.WorkloadSpec{Kind: core.TPCC},
		WarmTx:    warm,
		MeasureTx: measure,
	})
}

// Run executes a fully-specified experiment.
func Run(e Experiment) Result { return core.Run(e) }

// RunBatch executes independent experiments concurrently on a bounded
// worker pool (see SetParallelism) and returns results in input order.
// Every experiment owns a private engine and seeded RNG, so the batch is
// deterministic: RunBatch yields exactly what a serial loop over Run
// would, only faster on multi-core hosts.
func RunBatch(exps []Experiment) []Result { return runBatch(exps) }

// Scale multiplies all transaction counts in the figure harnesses;
// useful to trade precision for speed.
type Scale struct {
	Warm, Measure uint64
}

// QuickScale is fast and noisy (tests); PaperScale approximates the
// paper's "500 transactions after a warm-up period".
var (
	QuickScale = Scale{Warm: 50, Measure: 100}
	PaperScale = Scale{Warm: 200, Measure: 500}
)

// OLTPConfig and DSSConfig re-export the workload knobs.
type OLTPConfig = workload.OLTPConfig

// DSSConfig re-exports the DSS scan parameters.
type DSSConfig = workload.DSSConfig

// Nanoseconds converts a simulated duration for reporting.
func Nanoseconds(t sim.Time) float64 { return float64(t) / float64(sim.Nanosecond) }
