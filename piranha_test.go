package piranha

import (
	"strings"
	"testing"
)

var tiny = Scale{Warm: 20, Measure: 40}

func TestQuickstartPath(t *testing.T) {
	r := Run(P8(), OLTP(), WithScale(tiny))
	if r.CPUs != 8 || r.Tx != tiny.Measure || r.TimePerTx <= 0 {
		t.Fatalf("result %+v", r)
	}
	if !strings.Contains(r.String(), "busy") {
		t.Fatal("summary render broken")
	}
}

func TestConfigsDiffer(t *testing.T) {
	if P8().Chip.CPUs != 8 || P1().Chip.CPUs != 1 || P4().Chip.CPUs != 4 || P2().Chip.CPUs != 2 {
		t.Fatal("core counts wrong")
	}
	if OOO().Chip.Core.IssueWidth != 4 || INO().Chip.Core.IssueWidth != 1 {
		t.Fatal("issue widths wrong")
	}
	if P8F().Chip.Core.Clock.Freq() != 1250 {
		t.Fatal("P8F clock wrong")
	}
	if Pessimistic().Chip.L1.Ways != 1 {
		t.Fatal("pessimistic L1 wrong")
	}
	if MultiChip(3, 4).Chips != 3 || MultiChipOOO(2).Chips != 2 {
		t.Fatal("multichip wrong")
	}
}

func TestTable1Report(t *testing.T) {
	rep := Table1()
	for _, want := range []string{"500 MHz", "1000 MHz", "1250 MHz", "8-way", "6-way", "16 / 24 ns", "12 / 12 ns"} {
		if !strings.Contains(rep.Text, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, rep.Text)
		}
	}
}

func TestFigureReportRender(t *testing.T) {
	rep := Sec251Microcode()
	out := rep.String()
	if !strings.Contains(out, "sec2.5.1") || !strings.Contains(out, "re_instructions") {
		t.Fatalf("render:\n%s", out)
	}
	if rep.Metrics["re_instructions"] != 4 {
		t.Fatalf("remote engine instructions %v, want 4 (paper)", rep.Metrics["re_instructions"])
	}
}

func TestDirectoryNote(t *testing.T) {
	rep := DirectoryNote()
	if rep.Metrics["spare_bits"] != 44 {
		t.Fatalf("spare bits %v, want 44", rep.Metrics["spare_bits"])
	}
}

func TestFig9AreaFraction(t *testing.T) {
	rep := Fig9Area()
	f := rep.Metrics["core_cache_fraction"]
	if f < 0.65 || f > 0.85 {
		t.Fatalf("core+cache fraction %v, want ~0.75", f)
	}
}

func TestSec24OpenPageShape(t *testing.T) {
	rep := Sec24OpenPage()
	// The paper's claim: ~1 us open time yields >50% hits; and longer
	// timeouts cannot do worse than shorter ones on this stream.
	if rep.Metrics["hit_rate_1000ns"] < 0.5 {
		t.Fatalf("1us hit rate %v, want > 0.5", rep.Metrics["hit_rate_1000ns"])
	}
	if rep.Metrics["hit_rate_100ns"] >= rep.Metrics["hit_rate_10000ns"] {
		t.Fatal("hit rate should grow with the close timeout")
	}
}

func TestSec253CMIBounds(t *testing.T) {
	rep := Sec253CMI()
	if rep.Metrics["cmi_msgs_1024n_41sharers"] >= rep.Metrics["bcast_msgs_1024n_41sharers"] {
		t.Fatal("CMI must inject fewer messages than broadcast")
	}
	// The paper: CMI avoids the home-injection serialization, winning
	// on latency for large sharer sets.
	if rep.Metrics["cmi_lat_ns_1024n_41sharers"] >= rep.Metrics["bcast_lat_ns_1024n_41sharers"] {
		t.Fatal("CMI should beat broadcast latency at scale")
	}
	if rep.Metrics["buffer_headers_bound"] != 128 {
		t.Fatal("buffer bound arithmetic")
	}
}

func TestSec253NoNAKAblation(t *testing.T) {
	rep := Sec253NoNAK()
	if rep.Metrics["msgs_per_txn_piranha-no-nak"] >= rep.Metrics["msgs_per_txn_dash-baseline"] {
		t.Fatalf("no-NAK protocol should send fewer messages: %v vs %v",
			rep.Metrics["msgs_per_txn_piranha-no-nak"], rep.Metrics["msgs_per_txn_dash-baseline"])
	}
	if rep.Metrics["naks_piranha-no-nak"] != 0 {
		t.Fatal("the Piranha protocol must never NAK")
	}
	if rep.Metrics["naks_dash-baseline"] == 0 {
		t.Fatal("the baseline should NAK under this load")
	}
}

func TestSec261LinkNoFrameLoss(t *testing.T) {
	rep := Sec261LinkCode()
	if rep.Metrics["frames_lost"] != 0 {
		t.Fatal("retransmission should recover every frame")
	}
	s := rep.Metrics["inverted_share"]
	if s < 0.4 || s > 0.6 {
		t.Fatalf("random inversion share %v, want ~0.5", s)
	}
}

func TestFig5ShapeTiny(t *testing.T) {
	// Even at tiny scale the ordering must hold: P1 slowest, then INO,
	// then OOO, with P8 fastest — on both workloads.
	rep := Fig5(tiny)
	for _, kind := range []string{"oltp", "dss"} {
		p1 := rep.Metrics[kind+"_norm_time_P1"]
		ino := rep.Metrics[kind+"_norm_time_INO"]
		p8 := rep.Metrics[kind+"_norm_time_P8"]
		if !(p1 > ino && ino > 1 && p8 < 1) {
			t.Fatalf("%s ordering broken: P1=%v INO=%v OOO=1 P8=%v", kind, p1, ino, p8)
		}
	}
}

func TestCacheTradeoffShape(t *testing.T) {
	rep := TextCacheTradeoff(tiny)
	// A much larger L2 helps only modestly; dropping to 4 CPUs costs
	// nearly 2x. (The paper's argument for more cores over more SRAM.)
	if g := rep.Metrics["infinite_l2_gain_frac"]; g < 0 || g > 0.35 {
		t.Fatalf("8x L2 gain %v, want modest", g)
	}
	if s := rep.Metrics["p8_over_p4big"]; s < 1.5 {
		t.Fatalf("P4+8MB should be much slower than P8: %v", s)
	}
}

func TestWebBehavesLikeDSS(t *testing.T) {
	// §6: search-engine workloads behave like DSS — Piranha's speedup
	// over OOO should land in DSS territory (well above 1, compute-
	// dominated), not OLTP territory.
	p8 := Run(P8(), Web(), WithScale(Scale{Warm: 20, Measure: 60}))
	ooo := Run(OOO(), Web(), WithScale(Scale{Warm: 20, Measure: 60}))
	sp := ooo.TimePerTx / p8.TimePerTx
	if sp < 1.5 || sp > 3.5 {
		t.Fatalf("web speedup %v, want DSS-like (~2.3)", sp)
	}
	busy, _, _, _ := p8.Agg.Normalized(p8.Agg.Total())
	if busy < 0.5 {
		t.Fatalf("web workload should be compute-dominated: busy=%v", busy)
	}
}

func TestInclusionAblation(t *testing.T) {
	rep := AblationInclusion(tiny)
	// Inclusion must never win: it wastes the L2 on L1 duplicates and
	// pays back-invalidations (§2.3's rationale for no-inclusion).
	if rep.Metrics["inclusive_slowdown_frac"] < -0.02 {
		t.Fatalf("inclusive L2 outperformed non-inclusive: %v", rep.Metrics["inclusive_slowdown_frac"])
	}
	if rep.Metrics["mem_miss_frac_inclusive"] <= rep.Metrics["mem_miss_frac_noninc"] {
		t.Fatal("inclusion should push more misses to memory")
	}
}

func TestNanosecondsHelper(t *testing.T) {
	if Nanoseconds(2500) != 2.5 {
		t.Fatal("conversion wrong")
	}
}
